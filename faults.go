package ripple

import (
	"fmt"
	"strings"

	"ripple/internal/fault"
	"ripple/internal/sim"
)

// Faults selects deterministic fault injection for a scenario, mirroring
// the Mobility pattern: a constructor plus chainable options. The zero
// value is NoFaults(): nothing fails and the run is bit-identical to one
// that predates the knob.
//
//	ripple.Faults{}                                        // inert
//	ripple.StationChurn(4*ripple.Second, ripple.Second)    // crash/recover
//	ripple.StationChurn(4*ripple.Second, 0).
//		WithLinkFlaps(3).
//		WithNoiseBursts(2).
//		WithPartition(2*ripple.Second, 500*ripple.Millisecond)
//	ripple.LinkFlaps(5).WithSeed(7)
//
// Faults materialise two ways, both inside the deterministic event loop:
// as epoch-world overlays (dead stations and blocked links are removed
// from the epoch's link table and routes, noise penalties raise its
// effective decode threshold) and as in-engine events between epoch
// boundaries (frames to or from a crashed station are not delivered; a
// crashing station releases every packet in its custody). Fault schedules
// draw from the fault seed (WithSeed, default 1), never from the
// scenario's run seeds, so every seed-run of a scenario fails the same
// way — and results stay bit-identical at any seed-pool width or
// distributed worker count.
//
// Graceful degradation rides along whenever faults are active: after a
// configurable number of consecutive failed exchanges (WithThreshold,
// default 3) a flow's preferred forwarder is blacklisted until the next
// epoch's route refresh, and flows whose destination is cut off drop at
// the source, surfaced as Result.Unreachable rather than burnt airtime.
type Faults struct {
	mtbf, mttr     Time
	flapLinks      int
	flapUp         Time
	flapDown       Time
	noiseBursts    int
	noisePenaltyDB float64
	noiseRadius    float64
	partitionAt    Time
	partitionDur   Time
	threshold      int
	epoch          Time
	seed           uint64
}

// NoFaults returns the default: no fault injection. Equivalent to the
// zero Faults value.
func NoFaults() Faults { return Faults{} }

// StationChurn returns fault injection with station crash/recover churn:
// every station that is not a flow endpoint alternates Exp(mtbf) up-time
// and Exp(mttr) down-time (mttr 0 selects 1 s). Flow sources and
// destinations are exempt, so degradation measures relay failures rather
// than trivial endpoint death.
func StationChurn(mtbf, mttr Time) Faults { return Faults{mtbf: mtbf, mttr: mttr} }

// LinkFlaps returns fault injection with n flapping links (see
// WithLinkFlaps).
func LinkFlaps(n int) Faults { return Faults{flapLinks: n} }

// NoiseBursts returns fault injection with n regional noise sources (see
// WithNoiseBursts).
func NoiseBursts(n int) Faults { return Faults{noiseBursts: n} }

// WithStationMTBF returns a copy with station churn enabled: Exp(mtbf)
// up-time, Exp(mttr) down-time per non-endpoint station (mttr 0 selects
// 1 s).
func (f Faults) WithStationMTBF(mtbf, mttr Time) Faults {
	f.mtbf, f.mttr = mtbf, mttr
	return f
}

// WithLinkFlaps returns a copy that picks n links of the initial neighbor
// graph to flap — Exp(1 s) usable, Exp(250 ms) blocked, repeating. A
// blocked link delivers nothing in either direction but leaves both
// endpoints alive.
func (f Faults) WithLinkFlaps(n int) Faults {
	f.flapLinks = n
	return f
}

// WithFlapTimes returns a copy with the mean link up/down durations set
// (0 keeps the 1 s / 250 ms defaults).
func (f Faults) WithFlapTimes(up, down Time) Faults {
	f.flapUp, f.flapDown = up, down
	return f
}

// WithNoiseBursts returns a copy with n independent regional noise
// sources: each picks a fixed random center, waits Exp(1 s), then
// degrades every reception within 250 m by 20 dB for 200 ms, repeating.
// Tune with WithNoisePenalty.
func (f Faults) WithNoiseBursts(n int) Faults {
	f.noiseBursts = n
	return f
}

// WithNoisePenalty returns a copy with the burst SNR penalty (dB) and
// coverage radius (metres) set (0 keeps the 20 dB / 250 m defaults).
func (f Faults) WithNoisePenalty(db, radius float64) Faults {
	f.noisePenaltyDB, f.noiseRadius = db, radius
	return f
}

// WithPartition returns a copy that blocks every link crossing the
// topology's median-x split during [at, at+dur) — a transient area
// partition.
func (f Faults) WithPartition(at, dur Time) Faults {
	f.partitionAt, f.partitionDur = at, dur
	return f
}

// WithThreshold returns a copy with the failure-detection threshold set:
// that many consecutive failed exchanges blacklist a flow's preferred
// forwarder until the next epoch (default 3).
func (f Faults) WithThreshold(n int) Faults {
	f.threshold = n
	return f
}

// WithEpoch returns a copy with the fault-overlay epoch length set
// (default 500 ms). When mobility is active its epoch length wins — fault
// overlays ride the same boundaries.
func (f Faults) WithEpoch(epoch Time) Faults {
	f.epoch = epoch
	return f
}

// WithSeed returns a copy with the fault-schedule seed set (default 1).
// It is independent of Scenario.Seeds on purpose: the failure timeline is
// part of the world, shared by every seed-run.
func (f Faults) WithSeed(seed uint64) Faults {
	f.seed = seed
	return f
}

// Active reports whether the configuration injects any fault at all.
func (f Faults) Active() bool { return f.spec().Active() }

// String names the fault configuration for sweep labels, e.g.
// "faults(mtbf=4s,flaps=3,seed=7)"; the inert value prints "none".
func (f Faults) String() string {
	var opts []string
	if f.mtbf > 0 {
		opts = append(opts, fmt.Sprintf("mtbf=%v", f.mtbf))
		if f.mttr > 0 {
			opts = append(opts, fmt.Sprintf("mttr=%v", f.mttr))
		}
	}
	if f.flapLinks > 0 {
		opts = append(opts, fmt.Sprintf("flaps=%d", f.flapLinks))
	}
	if f.noiseBursts > 0 {
		opts = append(opts, fmt.Sprintf("noise=%d", f.noiseBursts))
	}
	if f.partitionDur > 0 {
		opts = append(opts, fmt.Sprintf("partition=%v+%v", f.partitionAt, f.partitionDur))
	}
	if f.threshold > 0 {
		opts = append(opts, fmt.Sprintf("threshold=%d", f.threshold))
	}
	if f.epoch > 0 {
		opts = append(opts, fmt.Sprintf("epoch=%v", f.epoch))
	}
	if f.seed > 0 {
		opts = append(opts, fmt.Sprintf("seed=%d", f.seed))
	}
	if len(opts) == 0 {
		return "none"
	}
	return "faults(" + strings.Join(opts, ",") + ")"
}

// spec resolves the public options into the simulator's fault spec.
func (f Faults) spec() fault.Spec {
	return fault.Spec{
		Seed:             f.seed,
		Epoch:            sim.Time(f.epoch),
		MTBF:             sim.Time(f.mtbf),
		MTTR:             sim.Time(f.mttr),
		FlapLinks:        f.flapLinks,
		FlapUp:           sim.Time(f.flapUp),
		FlapDown:         sim.Time(f.flapDown),
		NoiseBursts:      f.noiseBursts,
		NoisePenaltyDB:   f.noisePenaltyDB,
		NoiseRadius:      f.noiseRadius,
		PartitionAt:      sim.Time(f.partitionAt),
		PartitionDur:     sim.Time(f.partitionDur),
		FailureThreshold: f.threshold,
	}
}
