package ripple

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunWithTraceJSONL(t *testing.T) {
	top, path := LineTopology(2)
	var buf bytes.Buffer
	res, err := Run(Scenario{
		Topology:   top,
		Scheme:     SchemeRIPPLE,
		Flows:      []Flow{{ID: 1, Path: path, Traffic: FTP{}}},
		Duration:   200 * Millisecond,
		TraceJSONL: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no trace output written")
	}
	// Every line parses as a trace event with sane fields.
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		kind, _ := ev["kind"].(string)
		if kind != "tx" && kind != "rx" && kind != "corrupt" {
			t.Fatalf("line %d: unexpected kind %q", lines, kind)
		}
	}
	if lines < 10 {
		t.Fatalf("only %d trace lines for an active run", lines)
	}
	// Airtime accounting must be populated and plausible.
	if len(res.AirtimePerNode) == 0 {
		t.Fatal("no airtime recorded")
	}
	if res.BusyFraction <= 0 || res.BusyFraction > 3 {
		t.Fatalf("BusyFraction = %v", res.BusyFraction)
	}
	if res.AirtimePerNode[0] == 0 {
		t.Fatal("the TCP source transmitted nothing?")
	}
}

func TestRunFairnessIndex(t *testing.T) {
	top, paths := RegularTopology(3)
	flows := make([]Flow, len(paths))
	for i, p := range paths {
		flows[i] = Flow{ID: i + 1, Path: p, Traffic: FTP{},
			Start: Time(i) * 50 * Millisecond}
	}
	res, err := Run(Scenario{
		Topology: top,
		Scheme:   SchemeRIPPLE,
		Flows:    flows,
		Duration: 2 * Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric parallel flows should share fairly.
	if res.Fairness.Mean < 0.7 {
		t.Fatalf("Jain fairness = %.3f over symmetric flows", res.Fairness.Mean)
	}
}
