package ripple_test

import (
	"fmt"
	"log"

	"ripple"
)

// Example runs one TCP flow over a lossy 3-hop path with RIPPLE and
// checks the typed metrics a multi-seed run reports. The assertions are
// qualitative so the example is robust to simulator tuning.
func ExampleRun() {
	top, path := ripple.LineTopology(3)
	res, err := ripple.Run(ripple.Scenario{
		Topology: top,
		Scheme:   ripple.SchemeRIPPLE,
		Flows:    []ripple.Flow{{Path: path, Traffic: ripple.FTP{}}},
		Duration: 500 * ripple.Millisecond,
		Seeds:    []uint64{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	f := res.Flows[0]
	fmt.Println("delivered:", f.Throughput.Mean > 0)
	fmt.Println("interval:", f.Throughput.CI95 > 0 && res.Total.CI95 > 0)
	fmt.Println("delay measured:", f.Delay.Mean > 0)
	fmt.Println("seeds folded:", res.Total.N)
	// Output:
	// delivered: true
	// interval: true
	// delay measured: true
	// seeds folded: 3
}

// ExampleNet_FlowTo declares flows by endpoints: the Net computes each
// flow's minimum-ETX forwarder list under the same radio the simulation
// uses.
func ExampleNet_FlowTo() {
	top, _ := ripple.LineTopology(3)
	net, err := ripple.NewNet(top, ripple.IdealRadio())
	if err != nil {
		log.Fatal(err)
	}
	sc := net.Scenario(ripple.SchemeRIPPLE,
		net.FlowTo(0, 3, ripple.FTP{}),
		net.FlowTo(3, 0, ripple.VoIP{BitrateKbps: 64}),
	)
	sc.Duration = 500 * ripple.Millisecond
	res, err := ripple.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flows:", len(res.Flows))
	fmt.Println("both carried:", res.Flows[0].Throughput.Mean > 0 && res.Flows[1].Throughput.Mean > 0)
	fmt.Println("voice scored:", res.Flows[1].MoS.Mean > 0)
	// Output:
	// flows: 2
	// both carried: true
	// voice scored: true
}

// ExampleCompare runs one scenario under several schemes as a single
// campaign and gets each scheme's full result.
func ExampleCompare() {
	top, path := ripple.LineTopology(2)
	results, err := ripple.Compare(ripple.Scenario{
		Topology: top,
		Flows:    []ripple.Flow{{Path: path, Traffic: ripple.FTP{}}},
		Duration: 500 * ripple.Millisecond,
		Radio:    ripple.IdealRadio(),
	}, ripple.SchemeDCF, ripple.SchemeRIPPLE)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schemes:", len(results))
	fmt.Println("ripple wins:", results["RIPPLE"].Total.Mean > results["DCF"].Total.Mean)
	fmt.Println("delay reported:", results["DCF"].Flows[0].Delay.Mean > 0)
	// Output:
	// schemes: 2
	// ripple wins: true
	// delay reported: true
}

// ExampleRunBatch sweeps a parameterised traffic model — CBR pacing —
// as one campaign on the shared bounded worker pool.
func ExampleRunBatch() {
	top, path := ripple.LineTopology(1)
	var scenarios []ripple.Scenario
	for _, interval := range []ripple.Time{2 * ripple.Millisecond, 10 * ripple.Millisecond} {
		scenarios = append(scenarios, ripple.Scenario{
			Topology: top,
			Scheme:   ripple.SchemeDCF,
			Radio:    ripple.IdealRadio(),
			Flows:    []ripple.Flow{{Path: path, Traffic: ripple.CBR{Interval: interval}}},
			Duration: ripple.Second,
		})
	}
	results, err := ripple.RunBatch(ripple.Campaign{Scenarios: scenarios})
	if err != nil {
		log.Fatal(err)
	}
	// 1000-byte packets every 2 ms / 10 ms = 4 / 0.8 Mbps offered load.
	fmt.Printf("fast pacing: %.1f Mbps\n", results[0].Total.Mean)
	fmt.Printf("slow pacing: %.1f Mbps\n", results[1].Total.Mean)
	// Output:
	// fast pacing: 4.0 Mbps
	// slow pacing: 0.8 Mbps
}
