package ripple_test

import (
	"os"
	"reflect"
	"testing"

	"ripple"
)

// mobileDistCampaign is the mobile analogue of distCampaign: both
// scenarios run on epoch worlds (waypoint and Markov motion) with ETX
// routes recomputed at each boundary, so distributing it exercises the
// full time-varying path across worker processes.
func mobileDistCampaign() ripple.Campaign {
	mk := func(m ripple.Mobility) ripple.Scenario {
		top, path := ripple.LineTopology(3)
		return ripple.Scenario{
			Topology: top,
			Scheme:   ripple.SchemeRIPPLE,
			Flows:    []ripple.Flow{{ID: 1, Path: path, Traffic: ripple.FTP{}}},
			Seeds:    []uint64{1, 2},
			Duration: 300 * ripple.Millisecond,
			Routing:  ripple.ETXRouting(),
			Mobility: m,
		}
	}
	return ripple.Campaign{Scenarios: []ripple.Scenario{
		mk(ripple.WaypointMobility().WithEpoch(50*ripple.Millisecond).WithSpeed(5, 30)),
		mk(ripple.MarkovMobility().WithEpoch(50 * ripple.Millisecond)),
	}}
}

// TestDistributeMobileWorkerHelper is the re-exec helper for
// TestDistributeMobileCampaign (see TestDistributeWorkerHelper).
func TestDistributeMobileWorkerHelper(t *testing.T) {
	if os.Getenv(ripple.WorkerEnv) == "" {
		t.Skip("helper process for TestDistributeMobileCampaign")
	}
	mobileDistCampaign().Distribute(ripple.DistributeOptions{}) // never returns
}

// TestDistributeMobileCampaign: epoch worlds are rebuilt independently in
// every worker process, so distributing a mobile campaign over two
// workers must be bit-identical to RunBatch in-process — the distributed
// leg of the mobility determinism contract.
func TestDistributeMobileCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	c := mobileDistCampaign()
	want, err := ripple.RunBatch(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Distribute(ripple.DistributeOptions{
		Workers:    2,
		WorkerArgs: []string{"-test.run=TestDistributeMobileWorkerHelper"},
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("distributed mobile results differ from RunBatch:\ngot  %+v\nwant %+v", got, want)
	}
}
