package ripple

import (
	"fmt"
	"strings"

	"ripple/internal/network"
	"ripple/internal/sim"
)

// Mobility selects how stations move during a run, mirroring the Routing
// pattern: named models plus chainable options. The zero value is
// StaticMobility(): stations stay at their declared positions and the
// world never changes — bit-identical to a scenario that predates the
// knob.
//
//	ripple.WaypointMobility()                            // random waypoint, 5–15 m/s
//	ripple.WaypointMobility().WithSpeed(1, 3)            // pedestrian
//	ripple.WaypointMobility().WithPause(2 * ripple.Second)
//	ripple.MarkovMobility()                              // place transitions, 90% stay
//	ripple.MarkovMobility().WithStay(0.8).WithPlaces(12)
//	ripple.MarkovMobility().WithEpoch(time250ms).WithSeed(7)
//
// Positions change only at epoch boundaries (default every 500 ms of
// simulated time): the run executes on a precomputed sequence of
// immutable epoch worlds, so results stay bit-identical at any seed-pool
// width or distributed worker count. Trajectories draw from the
// mobility seed (WithSeed, default 1), never from the scenario's run
// seeds, so every seed-run of a scenario sees the same motion.
type Mobility struct {
	kind               network.MobilityKind
	epoch              Time
	seed               uint64
	minSpeed, maxSpeed float64
	pause              Time
	places             int
	stay               float64
}

// StaticMobility returns the default: no motion. Equivalent to the zero
// Mobility value.
func StaticMobility() Mobility { return Mobility{} }

// WaypointMobility returns the classic random waypoint model: each station
// repeatedly draws a uniform target inside the topology's bounding box and
// a uniform speed (default 5–15 m/s; see WithSpeed), travels there in a
// straight line, optionally pauses (WithPause), and repeats.
func WaypointMobility() Mobility { return Mobility{kind: network.MobilityWaypoint} }

// MarkovMobility returns place-transition mobility: stations hop between a
// fixed set of gathering places (default ≈√N; see WithPlaces) under a
// symmetric Markov chain, staying put each epoch with probability Stay
// (default 0.9; see WithStay). Stations that stay keep bit-identical
// coordinates, which keeps the incremental epoch-world rebuild cheap.
func MarkovMobility() Mobility { return Mobility{kind: network.MobilityMarkov} }

// WithEpoch returns a copy with the epoch length set (default 500 ms):
// the interval between world snapshots, at which positions, link tables
// and routes change.
func (m Mobility) WithEpoch(epoch Time) Mobility {
	m.epoch = epoch
	return m
}

// WithSeed returns a copy with the trajectory seed set (default 1). It is
// independent of Scenario.Seeds on purpose: motion is part of the world,
// shared by every seed-run.
func (m Mobility) WithSeed(seed uint64) Mobility {
	m.seed = seed
	return m
}

// WithSpeed returns a copy with the waypoint leg-speed range set, in m/s.
// Only meaningful for WaypointMobility.
func (m Mobility) WithSpeed(min, max float64) Mobility {
	m.minSpeed, m.maxSpeed = min, max
	return m
}

// WithPause returns a copy with the waypoint post-arrival pause set. Only
// meaningful for WaypointMobility.
func (m Mobility) WithPause(pause Time) Mobility {
	m.pause = pause
	return m
}

// WithPlaces returns a copy with the Markov place count set. Only
// meaningful for MarkovMobility.
func (m Mobility) WithPlaces(n int) Mobility {
	m.places = n
	return m
}

// WithStay returns a copy with the Markov per-epoch stay probability set
// (0 < stay < 1). Only meaningful for MarkovMobility.
func (m Mobility) WithStay(stay float64) Mobility {
	m.stay = stay
	return m
}

// Active reports whether the mobility makes the world time-varying.
func (m Mobility) Active() bool { return m.kind != network.MobilityStatic }

// String names the mobility configuration for sweep labels, e.g.
// "waypoint(speed=1-3,pause=2s)" or "markov(stay=0.8,epoch=250ms)".
func (m Mobility) String() string {
	name := m.kind.String()
	var opts []string
	if m.minSpeed > 0 || m.maxSpeed > 0 {
		opts = append(opts, fmt.Sprintf("speed=%g-%g", m.minSpeed, m.maxSpeed))
	}
	if m.pause > 0 {
		opts = append(opts, fmt.Sprintf("pause=%v", m.pause))
	}
	if m.places > 0 {
		opts = append(opts, fmt.Sprintf("places=%d", m.places))
	}
	if m.stay > 0 {
		opts = append(opts, fmt.Sprintf("stay=%g", m.stay))
	}
	if m.epoch > 0 {
		opts = append(opts, fmt.Sprintf("epoch=%v", m.epoch))
	}
	if m.seed > 0 {
		opts = append(opts, fmt.Sprintf("seed=%d", m.seed))
	}
	if len(opts) == 0 {
		return name
	}
	return name + "(" + strings.Join(opts, ",") + ")"
}

// spec resolves the public options into the simulator's mobility spec.
func (m Mobility) spec() network.MobilitySpec {
	return network.MobilitySpec{
		Kind:     m.kind,
		Epoch:    sim.Time(m.epoch),
		Seed:     m.seed,
		MinSpeed: m.minSpeed,
		MaxSpeed: m.maxSpeed,
		Pause:    sim.Time(m.pause),
		Places:   m.places,
		Stay:     m.stay,
	}
}
