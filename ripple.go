// Package ripple is the public API of the RIPPLE reproduction: a
// discrete-event IEEE 802.11 wireless network simulator with the RIPPLE
// opportunistic forwarding scheme (Li, Leith, Qiu — ICDCS 2010) and the
// schemes it is evaluated against (DCF/SPR predetermined routing, AFR
// aggregation, preExOR, MCExOR).
//
// A minimal run:
//
//	top, path := ripple.LineTopology(3)
//	res, err := ripple.Run(ripple.Scenario{
//		Topology: top,
//		Scheme:   ripple.SchemeRIPPLE,
//		Flows:    []ripple.Flow{{ID: 1, Path: path, Traffic: ripple.TrafficFTP}},
//		Duration: 10 * ripple.Second,
//		Seeds:    []uint64{1, 2, 3},
//	})
//
// Results report per-flow goodput, delay, reordering and (for VoIP) MoS.
package ripple

import (
	"fmt"
	"io"

	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/radio"
	"ripple/internal/routing"
	"ripple/internal/sim"
	"ripple/internal/topology"
)

// Time re-exports the simulator's nanosecond time unit.
type Time = sim.Time

// Convenient duration units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NodeID identifies a station.
type NodeID = int

// Path is a node sequence from a flow's source to its destination; for
// opportunistic schemes it doubles as the prioritised forwarder list.
type Path = []NodeID

// Scheme selects the forwarding scheme, using the paper's labels.
type Scheme int

// The available schemes.
const (
	// SchemeDCF is predetermined routing over plain IEEE 802.11 DCF ("D";
	// with a direct source→destination path it is SPR, "S").
	SchemeDCF Scheme = iota + 1
	// SchemeAFR aggregates up to 16 packets per frame on a predetermined
	// route with partial retransmission ("A").
	SchemeAFR
	// SchemePreExOR is the early ExOR with sequential per-forwarder ACKs.
	SchemePreExOR
	// SchemeMCExOR is the compressed-ACK opportunistic scheme.
	SchemeMCExOR
	// SchemeRIPPLE is the paper's contribution: mTXOP forwarding with
	// two-way aggregation ("R16").
	SchemeRIPPLE
	// SchemeRIPPLENoAgg is RIPPLE with aggregation disabled ("R1").
	SchemeRIPPLENoAgg
)

// Traffic selects a flow's workload.
type Traffic int

// The available workloads.
const (
	// TrafficFTP is a long-lived backlogged TCP transfer.
	TrafficFTP Traffic = iota + 1
	// TrafficWeb is the ON/OFF Pareto short-transfer TCP workload.
	TrafficWeb
	// TrafficVoIP is a 96 kbps on-off voice stream (MoS-scored).
	TrafficVoIP
	// TrafficCBR is a saturated constant-bit-rate datagram stream.
	TrafficCBR
)

// Topology is a set of station positions in metres.
type Topology struct {
	Name      string
	Positions []Position
}

// Position is a station location in metres.
type Position struct{ X, Y float64 }

// Flow describes one traffic flow.
type Flow struct {
	ID      int
	Path    Path
	Traffic Traffic
	Start   Time
}

// RadioProfile selects the wireless propagation environment.
type RadioProfile int

// The available radio profiles.
const (
	// RadioDefault is the paper's shadowing model: path-loss exponent 5,
	// 8 dB deviation, 281 mW transmit power, ~258 m half-loss range.
	RadioDefault RadioProfile = iota + 1
	// RadioHidden narrows carrier sensing (≈1.3× decode range) for the
	// hidden-terminal scenarios, as the paper tunes per experiment.
	RadioHidden
	// RadioIdeal disables shadowing and bit errors (for calibration).
	RadioIdeal
)

// Scenario is a complete experiment description. Zero values select the
// paper's defaults (216 Mbps PHY, BER 1e-6, 10 s duration, seed 1).
type Scenario struct {
	Topology Topology
	Scheme   Scheme
	Flows    []Flow
	Duration Time
	// Seeds runs the scenario once per seed (concurrently) and averages.
	Seeds []uint64
	// Radio selects the propagation profile (default RadioDefault).
	Radio RadioProfile
	// BitErrorRate overrides the channel BER (default 1e-6, "clear";
	// the paper's "noisy" channel is 1e-5).
	BitErrorRate float64
	// LowRatePHY switches both PHY rates to 6 Mbps (Table III setting).
	LowRatePHY bool
	// MaxForwarders caps forwarder lists (default 5, paper Remark 4).
	MaxForwarders int
	// MaxAggregation caps packets per frame for RIPPLE and AFR
	// (default 16).
	MaxAggregation int
	// MultiRate enables the paper's §V future-work extension: per-link
	// PHY rate selection over the 802.11a ladder (6 Mbps base) or its ×4
	// wideband scaling (216 Mbps base).
	MultiRate bool
	// RTSThreshold enables 802.11 RTS/CTS for the predetermined schemes
	// (DCF/AFR): data frames with at least this many MAC payload bytes are
	// protected by an RTS/CTS handshake. 0 disables the option.
	RTSThreshold int
	// TraceJSONL, when non-nil, receives one JSON object per medium event
	// (transmissions, receptions, corruptions) from the first seed's run,
	// and enables airtime accounting in the Result.
	TraceJSONL io.Writer
}

// FlowResult summarises one flow of a run. Metrics are means over the
// scenario's seeds.
type FlowResult struct {
	ID             int
	ThroughputMbps float64
	// ThroughputCI95 is the 95% confidence half-width of ThroughputMbps
	// over the scenario's seeds (0 with fewer than two seeds).
	ThroughputCI95 float64
	MeanDelay      Time
	ReorderRate    float64
	PktsDelivered  int64
	Transfers      int64
	MoS            float64 // VoIP only
	LossRate       float64 // VoIP only
}

// Result summarises a scenario (averaged over seeds).
type Result struct {
	Flows     []FlowResult
	TotalMbps float64
	// TotalMbpsCI95 is the 95% confidence half-width of TotalMbps over the
	// scenario's seeds (0 with fewer than two seeds).
	TotalMbpsCI95 float64
	// Fairness is Jain's index over per-flow throughputs (1 = equal).
	Fairness float64
	Events   uint64
	// AirtimePerNode and BusyFraction are populated when the scenario set
	// TraceJSONL (measured on the first seed's run).
	AirtimePerNode map[NodeID]Time
	BusyFraction   float64
}

// Run executes a scenario and returns seed-averaged results. Seeds run as
// independent units on the shared bounded worker pool (see RunBatch).
func Run(s Scenario) (*Result, error) {
	res, err := RunBatch(Campaign{Scenarios: []Scenario{s}})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Compare runs the same scenario under several schemes — in parallel, as
// one campaign on the shared pool — and returns total throughput keyed by
// the scheme's paper label. TraceJSONL is rejected: the schemes' traces
// would interleave on one writer; trace each scheme with its own Run.
func Compare(s Scenario, schemes ...Scheme) (map[string]float64, error) {
	if s.TraceJSONL != nil {
		return nil, fmt.Errorf("ripple: Compare cannot trace (schemes run in parallel); use Run per scheme with separate writers")
	}
	scenarios := make([]Scenario, len(schemes))
	for i, k := range schemes {
		sc := s
		sc.Scheme = k
		scenarios[i] = sc
	}
	results, err := RunBatch(Campaign{Scenarios: scenarios})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(schemes))
	for i, k := range schemes {
		out[k.String()] = results[i].TotalMbps
	}
	return out, nil
}

// String returns the paper's label for the scheme.
func (k Scheme) String() string { return kindOf(k).String() }

func kindOf(k Scheme) network.SchemeKind {
	switch k {
	case SchemeDCF:
		return network.DCF
	case SchemeAFR:
		return network.AFR
	case SchemePreExOR:
		return network.PreExOR
	case SchemeMCExOR:
		return network.MCExOR
	case SchemeRIPPLE:
		return network.Ripple
	case SchemeRIPPLENoAgg:
		return network.RippleNoAgg
	default:
		return 0
	}
}

func (s Scenario) toConfig() (*network.Config, error) {
	kind := kindOf(s.Scheme)
	if kind == 0 {
		return nil, fmt.Errorf("ripple: unknown scheme %d", int(s.Scheme))
	}
	var rc radio.Config
	switch s.Radio {
	case RadioHidden:
		rc = topology.HiddenRadio()
	case RadioIdeal:
		rc = radio.DefaultConfig()
		rc.ShadowSigmaDB = 0
		rc.BitErrorRate = 0
	case RadioDefault, 0:
		rc = radio.DefaultConfig()
	default:
		return nil, fmt.Errorf("ripple: unknown radio profile %d", int(s.Radio))
	}
	if s.BitErrorRate > 0 && s.Radio != RadioIdeal {
		rc.BitErrorRate = s.BitErrorRate
	}
	cfg := &network.Config{
		Radio:         rc,
		Scheme:        kind,
		Duration:      s.Duration,
		MaxForwarders: s.MaxForwarders,
	}
	if s.LowRatePHY {
		cfg.Phy = phys.LowRate()
	}
	if s.MaxAggregation > 0 {
		cfg.UnicastMaxAgg = s.MaxAggregation
		cfg.RippleOpts.MaxAgg = s.MaxAggregation
	}
	cfg.MultiRate.Enabled = s.MultiRate
	cfg.RTSThreshold = s.RTSThreshold
	cfg.Positions = make([]radio.Pos, len(s.Topology.Positions))
	for i, p := range s.Topology.Positions {
		cfg.Positions[i] = radio.Pos{X: p.X, Y: p.Y}
	}
	for _, f := range s.Flows {
		path := make(routing.Path, len(f.Path))
		for i, n := range f.Path {
			path[i] = pktNode(n)
		}
		var kind network.TrafficKind
		switch f.Traffic {
		case TrafficFTP:
			kind = network.FTP
		case TrafficWeb:
			kind = network.Web
		case TrafficVoIP:
			kind = network.VoIPTraffic
		case TrafficCBR:
			kind = network.CBRTraffic
		default:
			return nil, fmt.Errorf("ripple: flow %d: unknown traffic %d", f.ID, int(f.Traffic))
		}
		cfg.Flows = append(cfg.Flows, network.FlowSpec{
			ID: f.ID, Path: path, Kind: kind, Start: f.Start,
		})
	}
	return cfg, nil
}
