// Package ripple is the public API of the RIPPLE reproduction: a
// discrete-event IEEE 802.11 wireless network simulator with the RIPPLE
// opportunistic forwarding scheme (Li, Leith, Qiu — ICDCS 2010) and the
// schemes it is evaluated against (DCF/SPR predetermined routing, AFR
// aggregation, preExOR, MCExOR).
//
// A minimal run:
//
//	top, _ := ripple.LineTopology(3)
//	net, _ := ripple.NewNet(top, ripple.DefaultRadio())
//	sc := net.Scenario(ripple.SchemeRIPPLE, net.FlowTo(0, 3, ripple.FTP{}))
//	sc.Duration = 10 * ripple.Second
//	sc.Seeds = []uint64{1, 2, 3}
//	res, err := ripple.Run(sc)
//
// Results report per-flow goodput, delay, reordering and (for VoIP) MoS;
// every metric is a Metric carrying the seed mean with a 95% confidence
// half-width, min, max and sample count.
package ripple

import (
	"fmt"
	"io"

	"ripple/internal/network"
	"ripple/internal/phys"
	"ripple/internal/routing"
	"ripple/internal/sim"
)

// Time re-exports the simulator's nanosecond time unit.
type Time = sim.Time

// Convenient duration units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NodeID identifies a station.
type NodeID = int

// Path is a node sequence from a flow's source to its destination; for
// opportunistic schemes it doubles as the prioritised forwarder list.
type Path = []NodeID

// Scheme selects the forwarding scheme, using the paper's labels.
type Scheme int

// The available schemes.
const (
	// SchemeDCF is predetermined routing over plain IEEE 802.11 DCF ("D";
	// with a direct source→destination path it is SPR, "S").
	SchemeDCF Scheme = iota + 1
	// SchemeAFR aggregates up to 16 packets per frame on a predetermined
	// route with partial retransmission ("A").
	SchemeAFR
	// SchemePreExOR is the early ExOR with sequential per-forwarder ACKs.
	SchemePreExOR
	// SchemeMCExOR is the compressed-ACK opportunistic scheme.
	SchemeMCExOR
	// SchemeRIPPLE is the paper's contribution: mTXOP forwarding with
	// two-way aggregation ("R16").
	SchemeRIPPLE
	// SchemeRIPPLENoAgg is RIPPLE with aggregation disabled ("R1").
	SchemeRIPPLENoAgg
)

// Topology is a set of station positions in metres.
type Topology struct {
	Name      string
	Positions []Position
}

// Position is a station location in metres.
type Position struct{ X, Y float64 }

// Flow describes one traffic flow. Declare flows either explicitly — a
// Path from a topology constructor plus a TrafficSpec — or by endpoints
// with Net.FlowTo, which computes the forwarder list.
type Flow struct {
	// ID labels the flow in results. Zero is auto-assigned the smallest
	// unused positive integer in declaration order (explicit IDs are
	// never reused).
	ID int
	// Path runs source..destination; for opportunistic schemes it doubles
	// as the prioritised forwarder list.
	Path Path
	// Traffic is the flow's workload model: FTP, Web, VoIP or CBR.
	Traffic TrafficSpec
	// Start delays the flow's first packet.
	Start Time

	// err carries a deferred Net.FlowTo route-discovery failure.
	err error
}

// Scenario is a complete experiment description. Zero values select the
// paper's defaults (216 Mbps PHY, default radio with BER 1e-6, 10 s
// duration, seed 1).
type Scenario struct {
	Topology Topology
	Scheme   Scheme
	Flows    []Flow
	Duration Time
	// Seeds runs the scenario once per seed (concurrently) and averages.
	Seeds []uint64
	// Radio selects the propagation environment and PHY rate setting; the
	// zero value is DefaultRadio().
	Radio Radio
	// Routing selects the route policy; the zero value is StaticRouting()
	// (declared flow paths, used as given). See ETXRouting,
	// CongestionRouting, GeoRouting and the WithForwarders sizing option.
	Routing Routing
	// Mobility makes stations move during the run; the zero value is
	// StaticMobility() (no motion). See WaypointMobility and
	// MarkovMobility.
	Mobility Mobility
	// Faults injects deterministic failures — station churn, link flaps,
	// noise bursts, an area partition; the zero value is NoFaults(). See
	// StationChurn, LinkFlaps, NoiseBursts.
	Faults Faults
	// MaxForwarders caps forwarder lists (default 5, paper Remark 4).
	MaxForwarders int
	// MaxAggregation caps packets per frame for RIPPLE and AFR
	// (default 16).
	MaxAggregation int
	// MultiRate enables the paper's §V future-work extension: per-link
	// PHY rate selection over the 802.11a ladder (6 Mbps base) or its ×4
	// wideband scaling (216 Mbps base).
	MultiRate bool
	// RTSThreshold enables 802.11 RTS/CTS for the predetermined schemes
	// (DCF/AFR): data frames with at least this many MAC payload bytes are
	// protected by an RTS/CTS handshake. 0 disables the option.
	RTSThreshold int
	// TraceJSONL, when non-nil, receives one JSON object per medium event
	// (transmissions, receptions, corruptions) from the first seed's run,
	// and enables airtime accounting in the Result.
	TraceJSONL io.Writer
	// Audit enables the deep invariant-audit plane for every run of the
	// scenario: conservation invariants (queue custody, queue bounds,
	// crashed-station custody, event-time monotonicity) are re-validated
	// after every engine event and violations panic with a structured
	// report. Expensive — meant for debugging and CI, not sweeps. The
	// RIPPLE_AUDIT environment variable enables the same checks
	// process-wide.
	Audit bool
}

// FlowResult summarises one flow of a run. Every field is aggregated over
// the scenario's seeds.
type FlowResult struct {
	ID int
	// Throughput is the flow's goodput in Mbps.
	Throughput Metric
	// Delay is the mean one-way packet delay in milliseconds.
	Delay Metric
	// Reorder is the fraction of packets delivered out of order.
	Reorder Metric
	// Delivered counts packets delivered to the destination.
	Delivered Metric
	// Transfers counts completed transfers (Web workload).
	Transfers Metric
	// MoS is the Mean Opinion Score (VoIP only).
	MoS Metric
	// Loss is the fraction of packets lost or over delay budget (VoIP
	// only).
	Loss Metric
	// Unreachable counts packets dropped at the source because the flow's
	// destination was cut off by faults (0 without fault injection).
	Unreachable Metric
}

// Result summarises a scenario, aggregated over its seeds.
type Result struct {
	Flows []FlowResult
	// Total is the summed flow throughput in Mbps.
	Total Metric
	// Fairness is Jain's index over per-flow throughputs (1 = equal).
	Fairness Metric
	// Events counts simulation events processed per run.
	Events Metric
	// RouteStale counts epoch boundaries at which a flow kept a stale
	// route because its recompute failed; Unreachable counts packets
	// dropped because faults cut off their destination. Both are 0 for
	// static fault-free scenarios.
	RouteStale  Metric
	Unreachable Metric
	// AirtimePerNode and BusyFraction are populated when the scenario set
	// TraceJSONL (measured on the first seed's run).
	AirtimePerNode map[NodeID]Time
	BusyFraction   float64
}

// Run executes a scenario and returns seed-aggregated results. Seeds run
// as independent units on the shared bounded worker pool (see RunBatch).
func Run(s Scenario) (*Result, error) {
	res, err := RunBatch(Campaign{Scenarios: []Scenario{s}})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Compare runs the same scenario under several schemes — in parallel, as
// one campaign on the shared pool — and returns each scheme's full Result
// keyed by its paper label, so delay, fairness and confidence intervals
// are available without re-running. TraceJSONL is rejected: the schemes'
// traces would interleave on one writer; trace each scheme with its own
// Run.
func Compare(s Scenario, schemes ...Scheme) (map[string]*Result, error) {
	if s.TraceJSONL != nil {
		return nil, fmt.Errorf("ripple: Compare cannot trace (schemes run in parallel); use Run per scheme with separate writers")
	}
	scenarios := make([]Scenario, len(schemes))
	for i, k := range schemes {
		sc := s
		sc.Scheme = k
		scenarios[i] = sc
	}
	results, err := RunBatch(Campaign{Scenarios: scenarios})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Result, len(schemes))
	for i, k := range schemes {
		out[k.String()] = results[i]
	}
	return out, nil
}

// String returns the paper's label for the scheme.
func (k Scheme) String() string { return kindOf(k).String() }

func kindOf(k Scheme) network.SchemeKind {
	switch k {
	case SchemeDCF:
		return network.DCF
	case SchemeAFR:
		return network.AFR
	case SchemePreExOR:
		return network.PreExOR
	case SchemeMCExOR:
		return network.MCExOR
	case SchemeRIPPLE:
		return network.Ripple
	case SchemeRIPPLENoAgg:
		return network.RippleNoAgg
	default:
		return 0
	}
}

func (s Scenario) toConfig() (*network.Config, error) {
	kind := kindOf(s.Scheme)
	if kind == 0 {
		return nil, fmt.Errorf("ripple: unknown scheme %d", int(s.Scheme))
	}
	rc, err := s.Radio.config()
	if err != nil {
		return nil, err
	}
	cfg := &network.Config{
		Radio:         rc,
		Scheme:        kind,
		Duration:      s.Duration,
		MaxForwarders: s.MaxForwarders,
		Routing:       s.Routing.spec(),
		Mobility:      s.Mobility.spec(),
		Faults:        s.Faults.spec(),
		Audit:         s.Audit,
	}
	if s.Radio.lowRate {
		cfg.Phy = phys.LowRate()
	}
	if s.MaxAggregation > 0 {
		cfg.UnicastMaxAgg = s.MaxAggregation
		cfg.RippleOpts.MaxAgg = s.MaxAggregation
	}
	cfg.MultiRate.Enabled = s.MultiRate
	cfg.RTSThreshold = s.RTSThreshold
	cfg.Positions = make([]radioPos, len(s.Topology.Positions))
	for i, p := range s.Topology.Positions {
		cfg.Positions[i] = radioPos{X: p.X, Y: p.Y}
	}
	// Auto-assigned IDs (Flow.ID zero) take the smallest unused positive
	// integers in declaration order, skipping explicitly set IDs so mixing
	// the two styles cannot manufacture a duplicate.
	taken := make(map[int]bool, len(s.Flows))
	for _, f := range s.Flows {
		if f.ID != 0 {
			taken[f.ID] = true
		}
	}
	nextID := 1
	for _, f := range s.Flows {
		id := f.ID
		if id == 0 {
			for taken[nextID] {
				nextID++
			}
			id = nextID
			taken[id] = true
		}
		if f.err != nil {
			return nil, fmt.Errorf("ripple: flow %d: %w", id, f.err)
		}
		if f.Traffic == nil {
			return nil, fmt.Errorf("ripple: flow %d: no traffic model (set Traffic to FTP{}, Web{}, VoIP{} or CBR{})", id)
		}
		path := make(routing.Path, len(f.Path))
		for j, n := range f.Path {
			path[j] = pktNode(n)
		}
		spec := network.FlowSpec{ID: id, Path: path, Start: f.Start}
		if err := f.Traffic.applyTo(&spec); err != nil {
			return nil, fmt.Errorf("ripple: flow %d: %w", id, err)
		}
		cfg.Flows = append(cfg.Flows, spec)
	}
	return cfg, nil
}
