package ripple

import (
	"fmt"
	"sync"

	"ripple/internal/campaign/pool"
	"ripple/internal/network"
	"ripple/internal/trace"
)

// Campaign is a batch of scenarios executed together on the bounded worker
// pool. Every (scenario × seed) run is an independent unit, so a campaign
// with a handful of scenarios and several seeds each keeps all cores busy
// while never spawning more goroutines than the pool allows. Results are
// indexed like Scenarios and are bit-identical for any parallelism level.
type Campaign struct {
	Scenarios []Scenario
	// Parallel caps concurrently executing runs. 0 selects the shared
	// GOMAXPROCS-sized pool; 1 forces serial execution.
	Parallel int
	// Progress, when non-nil, is called after each completed run with the
	// number of finished runs and the total. Calls are serialized.
	Progress func(done, total int)
}

// RunBatch executes every scenario of a campaign and returns seed-averaged
// results in scenario order. Scenarios that set TraceJSONL must each use
// their own writer: traced runs execute concurrently.
func RunBatch(c Campaign) ([]*Result, error) {
	n := len(c.Scenarios)
	if n == 0 {
		return nil, nil
	}
	cfgs := make([]*network.Config, n)
	seedLists := make([][]uint64, n)
	recs := make([]*trace.Recorder, n)
	// A leaf is one simulation run: a seed of a scenario, or a scenario's
	// dedicated trace run (the recorder hook is not synchronised, so it
	// traces a separate first-seed run, as Run always has).
	type leaf struct {
		sc, seed int
		trace    bool
	}
	var leaves []leaf
	// Single-scenario batches (ripple.Run) keep their errors unprefixed.
	wrapErr := func(i int, err error) error {
		if n == 1 {
			return err
		}
		return fmt.Errorf("scenario %d: %w", i, err)
	}
	for i, s := range c.Scenarios {
		cfg, err := s.toConfig()
		if err != nil {
			return nil, wrapErr(i, err)
		}
		cfgs[i] = cfg
		seeds := s.Seeds
		if len(seeds) == 0 {
			seeds = []uint64{1}
		}
		seedLists[i] = seeds
		if s.TraceJSONL != nil {
			recs[i] = &trace.Recorder{W: s.TraceJSONL}
			leaves = append(leaves, leaf{sc: i, trace: true})
		}
		for j := range seeds {
			leaves = append(leaves, leaf{sc: i, seed: j})
		}
	}
	perSeed := make([][]*network.Result, n)
	for i := range perSeed {
		perSeed[i] = make([]*network.Result, len(seedLists[i]))
	}

	p := pool.Shared()
	if c.Parallel > 0 {
		p = pool.New(c.Parallel)
	}
	done := 0
	var progressMu sync.Mutex
	var progress func()
	if c.Progress != nil {
		progress = func() {
			done++
			c.Progress(done, len(leaves))
		}
	}
	err := p.Do(len(leaves), func(u int) error {
		l := leaves[u]
		cfg := *cfgs[l.sc]
		if l.trace {
			cfg.Seed = seedLists[l.sc][0]
			cfg.Trace = recs[l.sc].Hook()
			if _, err := network.Run(cfg); err != nil {
				return wrapErr(l.sc, err)
			}
			if err := recs[l.sc].Err(); err != nil {
				return wrapErr(l.sc, fmt.Errorf("ripple: trace write: %w", err))
			}
		} else {
			cfg.Seed = seedLists[l.sc][l.seed]
			res, err := network.Run(cfg)
			if err != nil {
				return wrapErr(l.sc, err)
			}
			perSeed[l.sc][l.seed] = res
		}
		if progress != nil {
			progressMu.Lock()
			progress()
			progressMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]*Result, n)
	for i := range out {
		out[i] = foldResult(cfgs[i], perSeed[i], recs[i])
	}
	return out, nil
}

// foldResult summarises one scenario's per-seed results (seed order, so
// the fold is deterministic) into the public Result: every metric streams
// through a Welford accumulator, so each carries its seed mean, 95%
// confidence half-width, min, max and sample count.
func foldResult(cfg *network.Config, results []*network.Result, rec *trace.Recorder) *Result {
	out := &Result{
		Total:       foldMetric(results, func(r *network.Result) float64 { return r.TotalMbps }),
		Fairness:    foldMetric(results, func(r *network.Result) float64 { return r.Fairness }),
		Events:      foldMetric(results, func(r *network.Result) float64 { return float64(r.Events) }),
		RouteStale:  foldMetric(results, func(r *network.Result) float64 { return float64(r.RouteStale) }),
		Unreachable: foldMetric(results, func(r *network.Result) float64 { return float64(r.Unreachable) }),
	}
	if rec != nil {
		dur := cfg.Duration
		if dur == 0 {
			dur = 10 * Second
		}
		out.BusyFraction = rec.BusyFraction(dur)
		out.AirtimePerNode = make(map[NodeID]Time)
		for id, t := range rec.Airtime() {
			out.AirtimePerNode[int(id)] = t
		}
	}
	for i, f := range results[0].Flows {
		out.Flows = append(out.Flows, FlowResult{
			ID:          f.ID,
			Throughput:  foldFlowMetric(results, i, func(f network.FlowResult) float64 { return f.ThroughputMbps }),
			Delay:       foldFlowMetric(results, i, func(f network.FlowResult) float64 { return f.MeanDelay.Milliseconds() }),
			Reorder:     foldFlowMetric(results, i, func(f network.FlowResult) float64 { return f.ReorderRate }),
			Delivered:   foldFlowMetric(results, i, func(f network.FlowResult) float64 { return float64(f.PktsDelivered) }),
			Transfers:   foldFlowMetric(results, i, func(f network.FlowResult) float64 { return float64(f.Transfers) }),
			MoS:         foldFlowMetric(results, i, func(f network.FlowResult) float64 { return f.MoS }),
			Loss:        foldFlowMetric(results, i, func(f network.FlowResult) float64 { return f.LossRate }),
			Unreachable: foldFlowMetric(results, i, func(f network.FlowResult) float64 { return float64(f.Unreachable) }),
		})
	}
	return out
}
