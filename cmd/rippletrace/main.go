// Command rippletrace analyses a JSONL medium trace produced by
// `ripplesim -trace file` (or the ripple.Scenario.TraceJSONL API): per-node
// airtime shares, frame-kind breakdowns, corruption hot-spots, and an
// optional per-mTXOP timeline.
//
//	ripplesim -topo fig1 -scheme ripple -dur 2 -trace run.jsonl
//	rippletrace -in run.jsonl
//	rippletrace -in run.jsonl -txop 0x300000001
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"ripple/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in   = flag.String("in", "", "JSONL trace file (default stdin)")
		txop = flag.String("txop", "", "print the event timeline of one mTXOP (hex id)")
		top  = flag.Int("top", 10, "rows to show in rankings")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		r = f
	}

	var events []trace.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev trace.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			fmt.Fprintf(os.Stderr, "skipping malformed line: %v\n", err)
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "no events")
		return 1
	}

	if *txop != "" {
		id, err := strconv.ParseUint(*txop, 0, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad txop id %q: %v\n", *txop, err)
			return 2
		}
		printTimeline(events, id)
		return 0
	}
	printSummary(events, *top)
	return 0
}

func printSummary(events []trace.Event, top int) {
	span := events[len(events)-1].TimeNs - events[0].TimeNs
	airtime := map[int]int64{}
	kinds := map[string]int{}
	corruptAt := map[int]int{}
	tx := 0
	for _, ev := range events {
		switch ev.Kind {
		case "tx":
			tx++
			airtime[ev.Node] += ev.Frame.DurationNs
			kinds[ev.Frame.Kind]++
		case "corrupt":
			corruptAt[ev.Node]++
		}
	}
	fmt.Printf("%d events over %.3f s; %d transmissions\n", len(events), float64(span)/1e9, tx)

	fmt.Println("\nairtime per node:")
	type row struct {
		node int
		ns   int64
	}
	rows := make([]row, 0, len(airtime))
	for n, ns := range airtime {
		rows = append(rows, row{n, ns})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ns > rows[j].ns })
	for i, r := range rows {
		if i >= top {
			break
		}
		share := 0.0
		if span > 0 {
			share = 100 * float64(r.ns) / float64(span)
		}
		fmt.Printf("  node %3d: %10.3f ms (%5.1f%%)\n", r.node, float64(r.ns)/1e6, share)
	}

	fmt.Println("\nframes by kind:")
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  %-5s %d\n", k, kinds[k])
	}

	if len(corruptAt) > 0 {
		fmt.Println("\ncorruptions per receiver:")
		crows := make([]row, 0, len(corruptAt))
		for n, c := range corruptAt {
			crows = append(crows, row{n, int64(c)})
		}
		sort.Slice(crows, func(i, j int) bool { return crows[i].ns > crows[j].ns })
		for i, r := range crows {
			if i >= top {
				break
			}
			fmt.Printf("  node %3d: %d\n", r.node, r.ns)
		}
	}
}

func printTimeline(events []trace.Event, txop uint64) {
	for _, ev := range events {
		if ev.Frame.Txop != txop {
			continue
		}
		fmt.Printf("%12.3fµs %-7s node %-3d %-4s tx=%d pkts=%d %dB %.1fµs\n",
			float64(ev.TimeNs)/1e3, ev.Kind, ev.Node, ev.Frame.Kind,
			ev.Frame.Tx, ev.Frame.Packets, ev.Frame.Bytes,
			float64(ev.Frame.DurationNs)/1e3)
	}
}
