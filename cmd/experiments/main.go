// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run name[,name...]] [-seeds n] [-dur seconds] [-quick]
//	            [-parallel n] [-json] [-ablations] [-scaling]
//
// With no -run flag every experiment runs in paper order. Every scenario
// cell of every experiment is scheduled on one bounded worker pool
// (GOMAXPROCS workers unless -parallel says otherwise); the numbers are
// identical for any -parallel value. Results print as aligned text tables
// whose rows mirror the paper's figures — with more than one seed each
// cell carries a 95% confidence half-width — or, with -json, as a JSON
// array of tables. Progress streams to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ripple/internal/campaign/pool"
	"ripple/internal/experiments"
	"ripple/internal/sim"
)

func main() {
	os.Exit(run())
}

// jsonTable is one experiment's output in -json mode.
type jsonTable struct {
	Experiment string               `json:"experiment"`
	Tables     []*experiments.Table `json:"tables"`
}

func run() int {
	var (
		runList   = flag.String("run", "", "comma-separated experiment names (default: all)")
		seeds     = flag.Int("seeds", 3, "number of seeds to average over")
		durSec    = flag.Float64("dur", 10, "simulated seconds per run")
		quick     = flag.Bool("quick", false, "1 seed, 2 simulated seconds")
		list      = flag.Bool("list", false, "list experiment names and exit")
		ablations = flag.Bool("ablations", false, "include the DESIGN.md §5 ablations")
		scaling   = flag.Bool("scaling", false, "include the city-scale sweep (minutes of runtime at N=20k)")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut   = flag.Bool("json", false, "emit all tables as one JSON array")
		prune     = flag.Float64("prunesigma", -1, "override radio neighbor pruning in shadowing sigmas (0 = exact/unpruned medium, -1 = per-experiment default)")
	)
	flag.Parse()

	all := experiments.All()
	if *ablations {
		all = append(all, experiments.Ablations()...)
	}
	if *scaling {
		all = append(all, experiments.ScalingRunners()...)
	}
	if *list {
		for _, r := range all {
			fmt.Println(r.Name)
		}
		return 0
	}

	opt := experiments.Options{Duration: sim.Time(*durSec * float64(sim.Second))}
	for s := 1; s <= *seeds; s++ {
		opt.Seeds = append(opt.Seeds, uint64(s))
	}
	if *quick {
		opt = experiments.Quick()
	}
	if *prune >= 0 {
		opt.PruneSigma = prune
	}
	if *parallel > 0 {
		// Resize the process-wide pool: every experiment's grid drains
		// through the one shared pool.
		pool.SetSharedWorkers(*parallel)
	}

	want := map[string]bool{}
	if *runList != "" {
		known := map[string]bool{}
		for _, r := range all {
			known[r.Name] = true
		}
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list; ablations need -ablations, scaling needs -scaling)\n", name)
				return 2
			}
			want[name] = true
		}
	}

	var out []jsonTable
	code := 0
	selected := 0
	for _, r := range all {
		if len(want) == 0 || want[r.Name] {
			selected++
		}
	}
	done := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.Name] {
			continue
		}
		done++
		// Progress lines are \r-rewritten; pad to the longest line printed
		// so far so a shorter line fully overwrites a longer one.
		lineLen := 0
		status := func(format string, args ...any) {
			line := fmt.Sprintf("[%d/%d] %s", done, selected, r.Name) + fmt.Sprintf(format, args...)
			if pad := lineLen - len(line); pad > 0 {
				line += strings.Repeat(" ", pad)
			} else {
				lineLen = len(line)
			}
			fmt.Fprintf(os.Stderr, "\r%s", line)
		}
		status("")
		ropt := opt
		ropt.Progress = func(d, total int) { status(": %d/%d runs", d, total) }
		start := time.Now()
		tables, err := r.Run(ropt)
		if err != nil {
			status(" failed after %.1fs", time.Since(start).Seconds())
			fmt.Fprintf(os.Stderr, "\nexperiment %s: %v\n", r.Name, err)
			code = 1
			continue
		}
		status(" done in %.1fs", time.Since(start).Seconds())
		fmt.Fprintln(os.Stderr)
		if *jsonOut {
			out = append(out, jsonTable{Experiment: r.Name, Tables: tables})
			continue
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return code
}
