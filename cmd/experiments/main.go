// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run name[,name...]] [-seeds n] [-dur seconds] [-quick]
//
// With no -run flag every experiment runs in paper order. Results print as
// aligned text tables whose rows mirror the paper's figures; paste them
// next to EXPERIMENTS.md for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ripple/internal/experiments"
	"ripple/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runList   = flag.String("run", "", "comma-separated experiment names (default: all)")
		seeds     = flag.Int("seeds", 3, "number of seeds to average over")
		durSec    = flag.Float64("dur", 10, "simulated seconds per run")
		quick     = flag.Bool("quick", false, "1 seed, 2 simulated seconds")
		list      = flag.Bool("list", false, "list experiment names and exit")
		ablations = flag.Bool("ablations", false, "include the DESIGN.md §5 ablations")
	)
	flag.Parse()

	all := experiments.All()
	if *ablations {
		all = append(all, experiments.Ablations()...)
	}
	if *list {
		for _, r := range all {
			fmt.Println(r.Name)
		}
		return 0
	}

	opt := experiments.Options{Duration: sim.Time(*durSec * float64(sim.Second))}
	for s := 1; s <= *seeds; s++ {
		opt.Seeds = append(opt.Seeds, uint64(s))
	}
	if *quick {
		opt = experiments.Quick()
	}

	want := map[string]bool{}
	if *runList != "" {
		for _, name := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	code := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.Name] {
			continue
		}
		start := time.Now()
		tables, err := r.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", r.Name, err)
			code = 1
			continue
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
		fmt.Printf("[%s done in %.1fs]\n\n", r.Name, time.Since(start).Seconds())
	}
	return code
}
