// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run name[,name...]] [-seeds n] [-dur seconds] [-quick]
//	            [-parallel n] [-json] [-ablations] [-scaling]
//	            [-workers n] [-listen addr] [-ckpt file | -resume file]
//	            [-supervise] [-cell-timeout d]
//	            [-worker | -connect addr]
//
// With no -run flag every experiment runs in paper order. Every scenario
// cell of every experiment is scheduled on one bounded worker pool
// (GOMAXPROCS workers unless -parallel says otherwise); the numbers are
// identical for any -parallel value. Results print as aligned text tables
// whose rows mirror the paper's figures — with more than one seed each
// cell carries a 95% confidence half-width — or, with -json, as a JSON
// array of tables. Progress streams to stderr.
//
// Distributed execution (docs/distributed.md): -workers n spawns n local
// worker processes and shards every grid across them; -listen also (or
// instead) accepts remote workers started with -connect addr and the same
// experiment flags. -ckpt writes a checkpoint file as cells complete;
// -resume continues an interrupted campaign from one; alongside either,
// a write-ahead journal (the checkpoint path + ".wal") records every
// delivered cell the moment it arrives, so resume loses nothing between
// checkpoint saves. -supervise re-execs the coordinator and auto-resumes
// it after a crash; -cell-timeout races stalled cells on another worker.
// The tables are bit-identical to a single-process run in every mode.
// -worker is the internal stdio worker mode -workers spawns.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ripple/internal/campaign/pool"
	"ripple/internal/dist"
	"ripple/internal/experiments"
	"ripple/internal/sim"
)

func main() {
	os.Exit(run())
}

// jsonTable is one experiment's output in -json mode.
type jsonTable struct {
	Experiment string               `json:"experiment"`
	Tables     []*experiments.Table `json:"tables"`
}

func run() int {
	var (
		runList   = flag.String("run", "", "comma-separated experiment names (default: all)")
		seeds     = flag.Int("seeds", 3, "number of seeds to average over")
		durSec    = flag.Float64("dur", 10, "simulated seconds per run")
		quick     = flag.Bool("quick", false, "1 seed, 2 simulated seconds")
		list      = flag.Bool("list", false, "list experiment names and exit")
		ablations = flag.Bool("ablations", false, "include the DESIGN.md §5 ablations")
		scaling   = flag.Bool("scaling", false, "include the city-scale sweep (minutes of runtime at N=20k)")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
		jsonOut   = flag.Bool("json", false, "emit all tables as one JSON array")
		prune     = flag.Float64("prunesigma", -1, "override radio neighbor pruning in shadowing sigmas (0 = exact/unpruned medium, -1 = per-experiment default)")

		workers      = flag.Int("workers", 0, "spawn n local worker processes and distribute grid cells across them")
		listen       = flag.String("listen", "", "accept remote workers on this TCP address (e.g. :9111)")
		ckptPath     = flag.String("ckpt", "", "write a distributed-run checkpoint to this file")
		resumePath   = flag.String("resume", "", "resume a distributed run from this checkpoint file")
		leaseCells   = flag.Int("lease", 0, "cells per worker lease (0 = auto)")
		leaseTimeout = flag.Duration("lease-timeout", 0, "reclaim a lease after this long without progress (0 = 2m)")
		workerMode   = flag.Bool("worker", false, "worker mode: serve leased cells over stdin/stdout (spawned by -workers)")
		connect      = flag.String("connect", "", "worker mode: serve leased cells to the coordinator at this TCP address")
		reconnect    = flag.Int("reconnect", 3, "with -connect: dials tried per connection outage, capped exponential backoff (1 = fail on first error)")
		supervise    = flag.Bool("supervise", false, "run the coordinator as a supervised child and auto-restart it with -resume after a crash (requires -ckpt or -resume)")
		cellTimeout  = flag.Duration("cell-timeout", 0, "race a lease's remaining cells on another worker after this long without a delivery (0 = derive from observed cell durations)")
	)
	flag.Parse()

	isWorker := *workerMode || *connect != ""
	isCoord := *workers > 0 || *listen != ""
	if isWorker && isCoord {
		fmt.Fprintln(os.Stderr, "-worker/-connect and -workers/-listen are mutually exclusive")
		return 2
	}
	if (*ckptPath != "" || *resumePath != "") && !isCoord {
		fmt.Fprintln(os.Stderr, "-ckpt/-resume require -workers or -listen")
		return 2
	}
	if *ckptPath != "" && *resumePath != "" {
		fmt.Fprintln(os.Stderr, "-ckpt and -resume are mutually exclusive (resume keeps writing its file)")
		return 2
	}
	if *supervise {
		if isWorker {
			fmt.Fprintln(os.Stderr, "-supervise and worker mode are mutually exclusive")
			return 2
		}
		if *ckptPath == "" && *resumePath == "" {
			fmt.Fprintln(os.Stderr, "-supervise requires -ckpt or -resume (the restart resumes from it)")
			return 2
		}
		path := *ckptPath
		if path == "" {
			path = *resumePath
		}
		return superviseLoop(path)
	}

	all := experiments.All()
	if *ablations {
		all = append(all, experiments.Ablations()...)
	}
	if *scaling {
		all = append(all, experiments.ScalingRunners()...)
	}
	if *list {
		for _, r := range all {
			fmt.Println(r.Name)
		}
		return 0
	}

	opt := experiments.Options{Duration: sim.Time(*durSec * float64(sim.Second))}
	for s := 1; s <= *seeds; s++ {
		opt.Seeds = append(opt.Seeds, uint64(s))
	}
	if *quick {
		opt = experiments.Quick()
	}
	if *prune >= 0 {
		opt.PruneSigma = prune
	}
	if *parallel > 0 {
		// Resize the process-wide pool: every experiment's grid drains
		// through the one shared pool.
		pool.SetSharedWorkers(*parallel)
	}

	if isWorker {
		name := fmt.Sprintf("worker-%d", os.Getpid())
		var rw io.ReadWriter = struct {
			io.Reader
			io.Writer
		}{os.Stdin, os.Stdout}
		var closeConn func()
		if *connect != "" {
			w, err := dist.DialReconnect(*connect, name, dist.RedialOptions{
				Attempts: *reconnect,
				Logf:     func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			closeConn = func() { w.Close() }
			opt.RunGrid = dist.WorkerRunGrid(w, nil)
		} else {
			// Stdout carries the protocol stream, so nothing else in this
			// process may print to it.
			w, err := dist.NewWorker(rw, name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			opt.RunGrid = dist.WorkerRunGrid(w, nil)
		}
		defer func() {
			if closeConn != nil {
				closeConn()
			}
		}()
	}

	var coord *dist.Coordinator
	var workerSet *dist.WorkerSet
	if isCoord {
		var ck *dist.Checkpoint
		var wal *dist.WAL
		var err error
		switch {
		case *resumePath != "":
			if _, serr := os.Stat(*resumePath); os.IsNotExist(serr) {
				// Resuming before the first checkpoint was ever saved (a
				// supervised coordinator that crashed early): start fresh —
				// the WAL replay still recovers any journalled cells.
				ck = dist.NewCheckpoint(*resumePath)
			} else if ck, err = dist.LoadCheckpoint(*resumePath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if wal, err = dist.OpenWAL(*resumePath + ".wal"); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		case *ckptPath != "":
			ck = dist.NewCheckpoint(*ckptPath)
			if wal, err = dist.CreateWAL(*ckptPath + ".wal"); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		coord = dist.NewCoordinator(dist.Options{
			LeaseCells:   *leaseCells,
			LeaseTimeout: *leaseTimeout,
			Checkpoint:   ck,
			WAL:          wal,
			CellTimeout:  *cellTimeout,
			Logf:         func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		opt.RunGrid = dist.CoordinatorRunGrid(coord)
		if *listen != "" {
			addr, stop, err := dist.Listen(coord, *listen)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			defer stop()
			fmt.Fprintf(os.Stderr, "coordinator listening on %s\n", addr)
		}
		if *workers > 0 {
			// Split the machine between the workers; the coordinator only
			// merges, so it needs no pool of its own.
			per := runtime.GOMAXPROCS(0) / *workers
			if per < 1 {
				per = 1
			}
			workerSet, err = dist.SpawnWorkers(coord, *workers, workerArgv(os.Args, per), nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
	}

	want := map[string]bool{}
	if *runList != "" {
		known := map[string]bool{}
		for _, r := range all {
			known[r.Name] = true
		}
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list; ablations need -ablations, scaling needs -scaling)\n", name)
				return 2
			}
			want[name] = true
		}
	}

	var out []jsonTable
	code := 0
	selected := 0
	for _, r := range all {
		if len(want) == 0 || want[r.Name] {
			selected++
		}
	}
	done := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.Name] {
			continue
		}
		done++
		// Progress lines are \r-rewritten; pad to the longest line printed
		// so far so a shorter line fully overwrites a longer one. Workers
		// stay quiet: their stderr is interleaved with the coordinator's.
		lineLen := 0
		status := func(format string, args ...any) {
			if isWorker {
				return
			}
			line := fmt.Sprintf("[%d/%d] %s", done, selected, r.Name) + fmt.Sprintf(format, args...)
			if pad := lineLen - len(line); pad > 0 {
				line += strings.Repeat(" ", pad)
			} else {
				lineLen = len(line)
			}
			fmt.Fprintf(os.Stderr, "\r%s", line)
		}
		status("")
		ropt := opt
		if !isWorker {
			ropt.Progress = func(d, total int) { status(": %d/%d runs", d, total) }
		}
		start := time.Now()
		tables, err := r.Run(ropt)
		if err != nil {
			status(" failed after %.1fs", time.Since(start).Seconds())
			fmt.Fprintf(os.Stderr, "\nexperiment %s: %v\n", r.Name, err)
			code = 1
			if isWorker {
				// A worker can't continue past a failed grid: it would be
				// out of step with the coordinator's grid sequence.
				return 1
			}
			continue
		}
		status(" done in %.1fs", time.Since(start).Seconds())
		if isWorker {
			continue // tables are placeholders; the protocol stream is the output
		}
		fmt.Fprintln(os.Stderr)
		if *jsonOut {
			out = append(out, jsonTable{Experiment: r.Name, Tables: tables})
			continue
		}
		for _, t := range tables {
			fmt.Println(t.Format())
		}
	}
	if coord != nil {
		// The campaign is over: release workers blocked on their next
		// lease request, then collect the spawned processes.
		coord.Close()
		if workerSet != nil {
			if err := workerSet.Wait(); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				code = 1
			}
		}
	}
	if *jsonOut && !isWorker {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return code
}

// workerArgv derives a spawned worker's command line from the
// coordinator's own: same binary and experiment selection, with
// coordinator-only and output flags stripped, running as a stdio worker
// with an equal share of the machine's cores.
func workerArgv(args []string, perWorker int) []string {
	// Flags a worker must not inherit. The booleans among them never take
	// a separate value argument; the rest do unless written as -flag=v.
	drop := map[string]bool{
		"workers": true, "listen": true, "ckpt": true, "resume": true,
		"lease": true, "lease-timeout": true, "parallel": true,
		"json": true, "worker": true, "connect": true,
		"supervise": true, "cell-timeout": true,
	}
	isBool := map[string]bool{"json": true, "worker": true, "supervise": true}
	out := []string{args[0]}
	for i := 1; i < len(args); i++ {
		a := args[i]
		if len(a) < 2 || a[0] != '-' {
			out = append(out, a)
			continue
		}
		name := strings.TrimLeft(a, "-")
		hasValue := false
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name, hasValue = name[:eq], true
		}
		if drop[name] {
			if !hasValue && !isBool[name] && i+1 < len(args) {
				i++ // skip the flag's detached value
			}
			continue
		}
		out = append(out, a)
	}
	return append(out, "-worker", "-parallel", strconv.Itoa(perWorker))
}

// superviseLoop re-execs this binary as a coordinator child (same argv
// minus -supervise) and restarts it after a crash, rewriting -ckpt to
// -resume so the restart picks up the checkpoint plus WAL instead of
// starting over. ckptPath is the checkpoint file the restarts resume
// from. The child's stdout (the result tables) is buffered to a temp file
// and emitted only when the child finishes, so a crashed incarnation's
// partial output never reaches the pipeline.
//
// Exit codes 0–2 propagate (done, deterministic failure, usage error —
// none of which a restart can fix). Anything else is treated as a crash;
// a progress gate over the checkpoint+WAL state hash gives up after two
// consecutive restarts that recovered nothing new, so a crash loop
// cannot spin forever.
func superviseLoop(ckptPath string) int {
	argv := superviseArgv(os.Args)
	resumed := false
	noProgress := 0
	lastState := superviseStateHash(ckptPath)
	for {
		child := argv
		if resumed {
			child = rewriteCkptToResume(argv, ckptPath)
		}
		tmp, err := os.CreateTemp("", "experiments-stdout-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer os.Remove(tmp.Name())
		cmd := exec.Command(child[0], child[1:]...)
		cmd.Stdout = tmp
		cmd.Stderr = os.Stderr
		runErr := cmd.Run()
		code := 0
		if runErr != nil {
			ee, ok := runErr.(*exec.ExitError)
			if !ok {
				fmt.Fprintln(os.Stderr, runErr)
				return 1
			}
			code = ee.ExitCode()
		}
		if code >= 0 && code <= 2 {
			if _, err := tmp.Seek(0, 0); err == nil {
				io.Copy(os.Stdout, tmp)
			}
			tmp.Close()
			return code
		}
		tmp.Close()
		state := superviseStateHash(ckptPath)
		if state == lastState {
			noProgress++
			if noProgress >= 2 {
				fmt.Fprintf(os.Stderr,
					"supervise: coordinator crashed (exit %d) with no progress %d times, giving up\n",
					code, noProgress)
				return 1
			}
		} else {
			noProgress = 0
			lastState = state
		}
		fmt.Fprintf(os.Stderr, "supervise: coordinator crashed (exit %d), restarting with -resume %s\n",
			code, ckptPath)
		resumed = true
	}
}

// superviseArgv strips -supervise from the coordinator's argv.
func superviseArgv(args []string) []string {
	out := []string{args[0]}
	for i := 1; i < len(args); i++ {
		name := strings.TrimLeft(args[i], "-")
		if eq := strings.IndexByte(name, '='); eq >= 0 {
			name = name[:eq]
		}
		if len(args[i]) >= 2 && args[i][0] == '-' && name == "supervise" {
			continue
		}
		out = append(out, args[i])
	}
	return out
}

// rewriteCkptToResume swaps a -ckpt flag for -resume so a restarted
// coordinator continues the interrupted campaign. An argv already using
// -resume is returned unchanged.
func rewriteCkptToResume(args []string, ckptPath string) []string {
	out := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		a := args[i]
		if len(a) >= 2 && a[0] == '-' {
			name := strings.TrimLeft(a, "-")
			hasValue := false
			if eq := strings.IndexByte(name, '='); eq >= 0 {
				name, hasValue = name[:eq], true
			}
			if name == "ckpt" {
				if !hasValue && i+1 < len(args) {
					i++ // the detached path value, replaced below
				}
				out = append(out, "-resume", ckptPath)
				continue
			}
		}
		out = append(out, a)
	}
	return out
}

// superviseStateHash fingerprints the checkpoint and WAL contents; a
// restart that changes neither recovered nothing, and two such restarts
// in a row stop the supervisor.
func superviseStateHash(ckptPath string) string {
	h := sha256.New()
	for _, p := range []string{ckptPath, ckptPath + ".wal"} {
		data, err := os.ReadFile(p)
		if err != nil {
			data = nil // missing file hashes as empty
		}
		fmt.Fprintf(h, "%d:", len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
