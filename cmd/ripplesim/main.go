// Command ripplesim runs a single scenario from command-line flags and
// prints per-flow results.
//
// Examples:
//
//	ripplesim -topo line -hops 3 -scheme ripple -traffic ftp -dur 10
//	ripplesim -topo fig1 -scheme dcf -route 0 -flows 3
//	ripplesim -topo hidden -hidden 5 -scheme afr
//	ripplesim -topo line -traffic cbr -cbrint 5 -cbrsize 200 -ber 1e-5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ripple"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		topo      = flag.String("topo", "line", "topology: line|fig1|regular|hidden|wigle|roofnet")
		hops      = flag.Int("hops", 3, "line topology hop count")
		scheme    = flag.String("scheme", "ripple", "scheme: dcf|afr|preexor|mcexor|ripple|ripple1")
		traffic   = flag.String("traffic", "ftp", "traffic: ftp|web|voip|cbr")
		route     = flag.Int("route", 0, "fig1 route set (0,1,2)")
		nFlows    = flag.Int("flows", 1, "number of flows (fig1: 1-3, regular: n)")
		hidden    = flag.Int("hidden", 0, "hidden interferer flows (hidden topology)")
		durSec    = flag.Float64("dur", 10, "simulated seconds")
		seeds     = flag.Int("seeds", 1, "seeds to average over")
		ber       = flag.Float64("ber", 0, "channel bit error rate (0 = profile default, 1e-6)")
		prune     = flag.Float64("prunesigma", -1, "neighbor pruning cutoff in shadowing sigmas (0 = exact/unpruned medium, -1 = profile default 6)")
		lowRate   = flag.Bool("lowrate", false, "6 Mbps PHY (Table III setting)")
		cbrMs     = flag.Float64("cbrint", 0, "CBR emission interval in ms (0 = saturating)")
		cbrBytes  = flag.Int("cbrsize", 0, "CBR payload bytes (0 = PHY packet size)")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON")
		traceOut  = flag.String("trace", "", "write per-frame JSONL trace to this file")
		multiRate = flag.Bool("multirate", false, "enable the multi-rate PHY extension")
		routing   = flag.String("routing", "static", "route policy: static|etx|congestion|geo")
		mobility  = flag.String("mobility", "static", "mobility model: static|waypoint|markov")
		maxSpeed  = flag.Float64("maxspeed", 0, "waypoint maximum speed in m/s (0 = default 15)")
		stay      = flag.Float64("stay", 0, "markov per-epoch stay probability (0 = default 0.9)")
		mobEpoch  = flag.Float64("mobepoch", 0, "mobility epoch length in ms (0 = default 500)")
		mobSeed   = flag.Uint64("mobseed", 0, "trajectory seed (0 = default 1; independent of run seeds)")
		alpha     = flag.Float64("alpha", 0, "congestion backlog weight in ETX per queued packet (0 = default 0.25)")
		epochMs   = flag.Float64("epoch", 0, "dynamic-policy recompute interval in ms (0 = default 500)")
		kRelays   = flag.Int("k", 0, "force routes to k intermediate relays (0 = unsized)")
		priority  = flag.String("priority", "spaced", "relay sizing rule: spaced|neardst|nearsrc")
		rts       = flag.Int("rts", 0, "RTS/CTS threshold in bytes for DCF/AFR (0 = off)")
		parallel  = flag.Int("parallel", 0, "worker pool size for seed runs (0 = GOMAXPROCS)")
		progress  = flag.Bool("progress", false, "report per-seed progress on stderr")
		workers   = flag.Int("workers", 0, "distribute seed runs across n spawned worker processes")
		faults    = flag.String("faults", "", "comma list of fault processes: flaps=N|noise=N|partition=AT+DUR (ms)")
		mtbf      = flag.Float64("mtbf", 0, "station churn mean time between failures in seconds (0 = off)")
		mttr      = flag.Float64("mttr", 0, "station churn mean repair time in seconds (0 = default 1)")
		faultSeed = flag.Uint64("faultseed", 0, "fault-schedule seed (0 = default 1; independent of run seeds)")
		auditOn   = flag.Bool("audit", false, "deep invariant auditing: re-validate conservation invariants after every engine event (slow)")
	)
	flag.Parse()

	if *workers > 0 && *traceOut != "" {
		// The trace pass runs in the coordinator, but every spawned worker
		// re-executes this argv and would truncate the trace file on start.
		fmt.Fprintln(os.Stderr, "-trace and -workers are mutually exclusive")
		return 2
	}

	sc := ripple.Scenario{
		Duration:     ripple.Time(*durSec * float64(ripple.Second)),
		MultiRate:    *multiRate,
		RTSThreshold: *rts,
		Audit:        *auditOn,
	}
	pol := strings.ToLower(*routing)
	switch pol {
	case "static", "":
		pol = "static"
		sc.Routing = ripple.StaticRouting()
	case "etx":
		sc.Routing = ripple.ETXRouting()
	case "congestion", "orcd":
		pol = "congestion"
		sc.Routing = ripple.CongestionRouting()
	case "geo":
		sc.Routing = ripple.GeoRouting()
	default:
		fmt.Fprintf(os.Stderr, "unknown routing policy %q\n", *routing)
		return 2
	}
	// Reject option/policy combinations that would silently do nothing, so
	// the printed routing label never claims an inert knob was in force.
	if *alpha > 0 {
		if pol != "congestion" {
			fmt.Fprintf(os.Stderr, "-alpha only applies to -routing congestion (got %s)\n", pol)
			return 2
		}
		sc.Routing = sc.Routing.WithAlpha(*alpha)
	}
	if *epochMs > 0 {
		if pol != "congestion" {
			fmt.Fprintf(os.Stderr, "-epoch only applies to dynamic policies (-routing congestion, got %s)\n", pol)
			return 2
		}
		sc.Routing = sc.Routing.WithEpoch(ripple.Time(*epochMs * float64(ripple.Millisecond)))
	}
	if *kRelays > 0 {
		sc.Routing = sc.Routing.WithForwarders(*kRelays)
	}
	switch strings.ToLower(*priority) {
	case "spaced", "":
	case "neardst", "nearsrc":
		if *kRelays <= 0 {
			fmt.Fprintf(os.Stderr, "-priority only applies together with -k\n")
			return 2
		}
		if strings.ToLower(*priority) == "neardst" {
			sc.Routing = sc.Routing.WithPriority(ripple.PriorityNearDst)
		} else {
			sc.Routing = sc.Routing.WithPriority(ripple.PriorityNearSrc)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown sizing priority %q\n", *priority)
		return 2
	}
	mob := strings.ToLower(*mobility)
	switch mob {
	case "static", "":
		mob = "static"
	case "waypoint":
		sc.Mobility = ripple.WaypointMobility()
	case "markov":
		sc.Mobility = ripple.MarkovMobility()
	default:
		fmt.Fprintf(os.Stderr, "unknown mobility model %q\n", *mobility)
		return 2
	}
	// Same inert-knob discipline as the routing options: a knob that the
	// selected model would ignore is an error, not a silent no-op.
	if *maxSpeed > 0 {
		if mob != "waypoint" {
			fmt.Fprintf(os.Stderr, "-maxspeed only applies to -mobility waypoint (got %s)\n", mob)
			return 2
		}
		sc.Mobility = sc.Mobility.WithSpeed(0, *maxSpeed)
	}
	if *stay > 0 {
		if mob != "markov" {
			fmt.Fprintf(os.Stderr, "-stay only applies to -mobility markov (got %s)\n", mob)
			return 2
		}
		sc.Mobility = sc.Mobility.WithStay(*stay)
	}
	if *mobEpoch > 0 {
		if mob == "static" {
			fmt.Fprintf(os.Stderr, "-mobepoch needs a mobility model (-mobility waypoint|markov)\n")
			return 2
		}
		sc.Mobility = sc.Mobility.WithEpoch(ripple.Time(*mobEpoch * float64(ripple.Millisecond)))
	}
	if *mobSeed > 0 {
		if mob == "static" {
			fmt.Fprintf(os.Stderr, "-mobseed needs a mobility model (-mobility waypoint|markov)\n")
			return 2
		}
		sc.Mobility = sc.Mobility.WithSeed(*mobSeed)
	}
	// Fault injection: -mtbf enables station churn; -faults adds link
	// flaps, noise bursts and a partition window. Inert-knob discipline as
	// above: a fault option without a fault process is an error.
	if *mtbf > 0 {
		sc.Faults = sc.Faults.WithStationMTBF(
			ripple.Time(*mtbf*float64(ripple.Second)),
			ripple.Time(*mttr*float64(ripple.Second)))
	} else if *mttr > 0 {
		fmt.Fprintf(os.Stderr, "-mttr only applies together with -mtbf\n")
		return 2
	}
	if *faults != "" {
		for _, part := range strings.Split(*faults, ",") {
			key, val, _ := strings.Cut(strings.TrimSpace(part), "=")
			var err error
			switch key {
			case "flaps":
				var n int
				if _, err = fmt.Sscanf(val, "%d", &n); err == nil {
					sc.Faults = sc.Faults.WithLinkFlaps(n)
				}
			case "noise":
				var n int
				if _, err = fmt.Sscanf(val, "%d", &n); err == nil {
					sc.Faults = sc.Faults.WithNoiseBursts(n)
				}
			case "partition":
				var atMs, durMs float64
				if _, err = fmt.Sscanf(val, "%g+%g", &atMs, &durMs); err == nil {
					sc.Faults = sc.Faults.WithPartition(
						ripple.Time(atMs*float64(ripple.Millisecond)),
						ripple.Time(durMs*float64(ripple.Millisecond)))
				}
			default:
				err = fmt.Errorf("unknown process (want flaps=N, noise=N or partition=AT+DUR)")
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "-faults %q: %v\n", part, err)
				return 2
			}
		}
	}
	if *faultSeed > 0 {
		if !sc.Faults.Active() {
			fmt.Fprintf(os.Stderr, "-faultseed needs a fault process (-mtbf or -faults)\n")
			return 2
		}
		sc.Faults = sc.Faults.WithSeed(*faultSeed)
	}
	for s := 1; s <= *seeds; s++ {
		sc.Seeds = append(sc.Seeds, uint64(s))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		sc.TraceJSONL = f
	}

	switch strings.ToLower(*scheme) {
	case "dcf", "d", "spr", "s":
		sc.Scheme = ripple.SchemeDCF
	case "afr", "a":
		sc.Scheme = ripple.SchemeAFR
	case "preexor":
		sc.Scheme = ripple.SchemePreExOR
	case "mcexor":
		sc.Scheme = ripple.SchemeMCExOR
	case "ripple", "r16":
		sc.Scheme = ripple.SchemeRIPPLE
	case "ripple1", "r1":
		sc.Scheme = ripple.SchemeRIPPLENoAgg
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		return 2
	}

	var kind ripple.TrafficSpec
	switch strings.ToLower(*traffic) {
	case "ftp":
		kind = ripple.FTP{}
	case "web":
		kind = ripple.Web{}
	case "voip":
		kind = ripple.VoIP{}
	case "cbr":
		kind = ripple.CBR{
			Interval:   ripple.Time(*cbrMs * float64(ripple.Millisecond)),
			PacketSize: *cbrBytes,
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown traffic %q\n", *traffic)
		return 2
	}

	rad := ripple.DefaultRadio()
	switch strings.ToLower(*topo) {
	case "line":
		top, path := ripple.LineTopology(*hops)
		sc.Topology = top
		sc.Flows = []ripple.Flow{{ID: 1, Path: path, Traffic: kind}}
	case "fig1":
		sc.Topology = ripple.Fig1Topology()
		var rs ripple.RouteSet
		switch *route {
		case 0:
			rs = ripple.Route0()
		case 1:
			rs = ripple.Route1()
		case 2:
			rs = ripple.Route2()
		default:
			fmt.Fprintf(os.Stderr, "route must be 0, 1 or 2\n")
			return 2
		}
		paths := []ripple.Path{rs.Flow1, rs.Flow2, rs.Flow3}
		n := min(max(*nFlows, 1), 3)
		for i := 0; i < n; i++ {
			sc.Flows = append(sc.Flows, ripple.Flow{
				ID: i + 1, Path: paths[i], Traffic: kind,
				Start: ripple.Time(i) * 100 * ripple.Millisecond,
			})
		}
	case "regular":
		top, paths := ripple.RegularTopology(max(*nFlows, 1))
		sc.Topology = top
		for i, p := range paths {
			sc.Flows = append(sc.Flows, ripple.Flow{
				ID: i + 1, Path: p, Traffic: kind,
				Start: ripple.Time(i) * 50 * ripple.Millisecond,
			})
		}
	case "hidden":
		top, main, interferers := ripple.HiddenTopology(*hidden)
		sc.Topology = top
		rad = ripple.HiddenRadio()
		sc.Flows = []ripple.Flow{{ID: 1, Path: main, Traffic: kind}}
		for i, p := range interferers {
			sc.Flows = append(sc.Flows, ripple.Flow{
				ID: i + 2, Path: p, Traffic: ripple.CBR{},
				Start: 50 * ripple.Millisecond,
			})
		}
	case "wigle":
		top, paths, _ := ripple.WigleTopology()
		sc.Topology = top
		rad = ripple.HiddenRadio()
		n := min(max(*nFlows, 1), len(paths))
		for i := 0; i < n; i++ {
			sc.Flows = append(sc.Flows, ripple.Flow{
				ID: i + 1, Path: paths[i], Traffic: kind,
				Start: ripple.Time(i) * 50 * ripple.Millisecond,
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		return 2
	}
	if *ber > 0 {
		rad = rad.WithBER(*ber)
	}
	if *prune >= 0 {
		rad = rad.WithPruneSigma(*prune)
	}
	if *lowRate {
		rad = rad.WithLowRatePHY()
	}
	sc.Radio = rad

	campaign := ripple.Campaign{Scenarios: []ripple.Scenario{sc}, Parallel: *parallel}
	if *progress {
		campaign.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rrun %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var results []*ripple.Result
	var err error
	if *workers > 0 || os.Getenv(ripple.WorkerEnv) != "" {
		// Coordinator mode — or a spawned worker re-executing this argv,
		// in which case Distribute serves leased runs and never returns.
		results, err = campaign.Distribute(ripple.DistributeOptions{
			Workers: *workers,
			Logf:    func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
	} else {
		results, err = ripple.RunBatch(campaign)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res := results[0]
	if *jsonOut {
		out := struct {
			Scheme string         `json:"scheme"`
			Topo   string         `json:"topology"`
			Result *ripple.Result `json:"result"`
		}{sc.Scheme.String(), *topo, res}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	header := fmt.Sprintf("scheme=%s topo=%s radio=%s", sc.Scheme, *topo, sc.Radio)
	if rs := sc.Routing.String(); rs != "static" {
		header += " routing=" + rs
	}
	if ms := sc.Mobility.String(); ms != "static" {
		header += " mobility=" + ms
	}
	if sc.Faults.Active() {
		header += " " + sc.Faults.String()
	}
	fmt.Printf("%s dur=%.0fs seeds=%d\n", header, *durSec, *seeds)
	for _, f := range res.Flows {
		line := fmt.Sprintf("flow %2d: %8.3f Mbps  delay %8.2fms  reorder %5.2f%%",
			f.ID, f.Throughput.Mean, f.Delay.Mean, 100*f.Reorder.Mean)
		if f.MoS.Mean > 0 {
			line += fmt.Sprintf("  MoS %.2f loss %.1f%%", f.MoS.Mean, 100*f.Loss.Mean)
		}
		fmt.Println(line)
	}
	if res.Unreachable.Mean > 0 || res.RouteStale.Mean > 0 {
		fmt.Printf("degradation: %.0f unreachable drops, %.0f stale-route epochs\n",
			res.Unreachable.Mean, res.RouteStale.Mean)
	}
	if res.Total.N >= 2 {
		fmt.Printf("total: %.3f ±%.3f Mbps (95%% CI over %d seeds)\n",
			res.Total.Mean, res.Total.CI95, res.Total.N)
	} else {
		fmt.Printf("total: %.3f Mbps\n", res.Total.Mean)
	}
	return 0
}
