package ripple

import (
	"fmt"

	"ripple/internal/pkt"
	"ripple/internal/radio"
	"ripple/internal/routing"
)

// Route discovery. The paper treats forwarder selection as orthogonal to
// RIPPLE's forwarding ("RIPPLE can easily incorporate any forwarder
// selection schemes", §III-B1) and cites ETX (De Couto et al.) as what
// ExOR/MORE use. These helpers compute ETX routes over a topology using the
// same analytic link model the simulator's radio uses.

// Router computes minimum-ETX paths over a topology.
type Router struct {
	table    *routing.Table
	stations int
}

// NewRouter builds the ETX link table for a topology under the given
// radio (the zero Radio is DefaultRadio()). The link model is resolved by
// the same profile→config mapping the simulator uses, so routes are
// computed over exactly the channel the packets will see.
func NewRouter(top Topology, r Radio) (*Router, error) {
	rc, err := r.config()
	if err != nil {
		return nil, err
	}
	positions := make([]radio.Pos, len(top.Positions))
	for i, p := range top.Positions {
		positions[i] = radio.Pos{X: p.X, Y: p.Y}
	}
	tab := routing.NewTable(len(positions), func(a, b pkt.NodeID) float64 {
		return 1 - rc.LossProb(radio.Dist(positions[a], positions[b]))
	}, 0.1)
	return &Router{table: tab, stations: len(positions)}, nil
}

// Path returns the minimum-ETX path between two stations, usable directly
// as a Flow.Path (and as the forwarder list for opportunistic schemes).
func (r *Router) Path(src, dst NodeID) (Path, error) {
	for _, n := range []NodeID{src, dst} {
		if n < 0 || n >= r.stations {
			return nil, fmt.Errorf("station %d outside topology (%d stations)", n, r.stations)
		}
	}
	p, err := r.table.ShortestPath(pkt.NodeID(src), pkt.NodeID(dst))
	if err != nil {
		return nil, err
	}
	return fromPath(p), nil
}

// PathETX returns the summed ETX metric of a path.
func (r *Router) PathETX(p Path) float64 {
	rp := make(routing.Path, len(p))
	for i, n := range p {
		rp[i] = pkt.NodeID(n)
	}
	return r.table.PathETX(rp)
}

// LinkQuality returns the one-way frame delivery probability of a link
// under the router's radio profile.
func (r *Router) LinkQuality(a, b NodeID) float64 {
	return r.table.LinkProb(pkt.NodeID(a), pkt.NodeID(b))
}
